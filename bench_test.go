package hog

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation studies of DESIGN.md's per-experiment index. Each benchmark
// iteration executes the corresponding experiment end to end and reports the
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every row the paper reports at a bounded scale. For the
// paper-scale sweeps (all 12 Figure 4 points, 3 seeds each, the full 88-job
// schedule) use cmd/hogbench, whose output EXPERIMENTS.md records.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"hog/internal/disk"
	"hog/internal/experiments"
	"hog/internal/harness"
	"hog/internal/hdfs"
	"hog/internal/mapred"
	"hog/internal/netmodel"
	"hog/internal/sim"
	"hog/internal/topology"
	"hog/internal/workload"
)

// benchOpts keeps a single benchmark iteration to a few seconds while
// preserving every experiment's qualitative shape.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale: 0.5,
		Seeds: []int64{1},
		Nodes: []int{40, 55, 99, 100, 180},
	}
}

// netRebalanceRun drives a 1000-node, 10-site network through a churn-heavy
// flow schedule: thousands of overlapping transfers starting, sharing links
// and finishing, which is exactly the event pattern that made the global
// rebalancer the experiment bottleneck. Returns completions as a cheap
// self-check.
func netRebalanceRun(global bool) int {
	const (
		nSites       = 10
		nodesPerSite = 100
		nFlows       = 8000
	)
	eng := sim.New(1)
	net := netmodel.New(eng, netmodel.Config{GlobalRebalance: global})
	for s := 0; s < nSites; s++ {
		site := net.AddSite("site", 300e6, 300e6)
		for i := 0; i < nodesPerSite; i++ {
			net.AddNode(site, "wn")
		}
	}
	completed := 0
	// Traffic mix mirrors a HOG run: mostly site-local block reads and
	// node-local disk I/O, with a cross-site minority (shuffle, replication)
	// contending on the WAN uplinks.
	for i := 0; i < nFlows; i++ {
		site := (i * 7) % nSites
		src := netmodel.NodeID(site*nodesPerSite + (i*613)%nodesPerSite)
		var dst netmodel.NodeID
		if i%10 < 7 { // site-local transfer (block reads, pipeline hops)
			dst = netmodel.NodeID(site*nodesPerSite + (i*389+17)%nodesPerSite)
			if dst == src {
				dst = netmodel.NodeID(site*nodesPerSite + (int(src)+1)%nodesPerSite)
			}
		} else { // cross-site transfer (shuffle, re-replication)
			far := (site + 1 + i%(nSites-1)) % nSites
			dst = netmodel.NodeID(far*nodesPerSite + (i*389+17)%nodesPerSite)
		}
		bytes := float64(1+(i%50)) * 4e6
		start := sim.Time(i%500) * 10 * sim.Millisecond
		i := i
		eng.Schedule(start, func() {
			net.StartFlow(src, dst, bytes, func() { completed++ })
			if i%2 == 0 {
				net.StartDiskIO(src, bytes/2, nil)
			}
		})
	}
	eng.Run()
	return completed
}

// BenchmarkNetRebalance compares the link-scoped incremental rebalancer
// (the default) against the rebalance-everything baseline at 1000 nodes.
// The acceptance bar for this PR is incremental <= global/5 ns/op.
func BenchmarkNetRebalance(b *testing.B) {
	for _, mode := range []struct {
		name   string
		global bool
	}{{"incremental", false}, {"global", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := netRebalanceRun(mode.global); got != 8000 {
					b.Fatalf("completed %d flows, want 8000", got)
				}
			}
		})
	}
}

// schedulerRun drives a 1008-node, 12-site MapReduce cluster through the
// scheduler's worst case: all input blocks live on 48 dedicated data nodes
// with zero map slots, so under delay scheduling every one of the ~960
// worker trackers holds a free slot whose every heartbeat probes all 24
// queued jobs — for the scan path, every map of every job, O(jobs x tasks x
// trackers) per wave — and declines the non-local work until LocalityWait
// expires near the end of the horizon, when remote launches flood out. The
// event stream is identical under both scheduler paths (they are
// bit-identical), so wall-clock differences are assignment-path cost alone.
// Returns total map attempts launched as the cross-path self-check.
func schedulerRun(scan bool) int {
	const (
		nSites      = 12
		perSite     = 84
		dataPerSite = 4 // slotless block hosts; the rest are workers
		nJobs       = 24
		nMaps       = 50
		blockLen    = 8e6
	)
	eng := sim.New(1)
	net := netmodel.New(eng, netmodel.Config{})
	dt := disk.NewTracker()
	nnCfg := hdfs.HOGConfig()
	nnCfg.Replication = 2
	nnCfg.BlockSize = blockLen
	nn := hdfs.NewNamenode(eng, net, dt, nnCfg)
	jtCfg := mapred.DefaultConfig()
	jtCfg.TrackerTimeout = 60 * sim.Second
	jtCfg.LocalityWait = 3 * sim.Minute
	jtCfg.ScanScheduler = scan
	jt := mapred.NewJobTracker(eng, net, nn, dt, jtCfg)
	mapper := topology.NewMapper()
	var nodes, workers []netmodel.NodeID
	for s := 0; s < nSites; s++ {
		dom := fmt.Sprintf("site%d.edu", s)
		sid := net.AddSite(dom, 300e6, 300e6)
		for i := 0; i < perSite; i++ {
			host := fmt.Sprintf("wn%d.%s", i, dom)
			id := net.AddNode(sid, host)
			nn.Register(id, host)
			if i < dataPerSite {
				dt.SetCapacity(id, 100e9)
				jt.RegisterTracker(id, host, mapper.Site(host), 0, 1)
			} else {
				dt.SetCapacity(id, 1e6) // too small for a block: no replicas land here
				jt.RegisterTracker(id, host, mapper.Site(host), 1, 1)
				workers = append(workers, id)
			}
			nodes = append(nodes, id)
		}
	}
	nn.Start()
	jt.Start()
	eng.Every(3*sim.Second, func() {
		for _, id := range nodes {
			nn.Heartbeat(id)
			jt.Heartbeat(id)
		}
	})
	for i := 0; i < nJobs; i++ {
		name := fmt.Sprintf("sched%02d", i)
		nn.SeedFile("/in/"+name, nMaps*blockLen, 0)
		jt.Submit(mapred.JobConfig{Name: name, InputFile: "/in/" + name, Reduces: 1})
	}
	// Workers get real scratch space only after seeding pinned the input to
	// the data nodes.
	for _, id := range workers {
		dt.SetCapacity(id, 100e9)
	}
	eng.RunWhile(func() bool { return !jt.AllDone() && eng.Now() < 4*sim.Minute })
	started := 0
	for _, j := range jt.Jobs() {
		started += j.Counters().MapAttemptsStarted
	}
	return started
}

// BenchmarkScheduler compares the indexed assignment path (the default)
// against the retained linear-scan baseline on a ~1000-node grid. The
// acceptance bar for this PR is indexed <= scan/5 ns/op.
func BenchmarkScheduler(b *testing.B) {
	want := -1
	for _, mode := range []struct {
		name string
		scan bool
	}{{"indexed", false}, {"scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got := schedulerRun(mode.scan)
				if got == 0 {
					b.Fatal("no map attempts launched")
				}
				if want == -1 {
					want = got
				} else if got != want {
					b.Fatalf("paths diverge: %d map attempts vs %d", got, want)
				}
			}
		})
	}
}

// engineTimerRun drives a bare engine through the timer population a
// MEGA-GRID simulation carries: tens of thousands of clustered periodic
// tickers (worker heartbeats with microsecond skew, master scan loops) plus
// a churn of one-shot timers that get rescheduled and canceled (flow
// completions, node lifetimes, speculative launches). This is the pure
// event-queue workload: wall-clock differences between the wheel and the
// heap here are queue cost and nothing else.
func engineTimerRun(heapSched bool, nTimers int) uint64 {
	e := sim.NewEngine(sim.Config{Seed: 1, HeapScheduler: heapSched})
	for i := 0; i < nTimers; i++ {
		iv := 3*sim.Second + sim.Time(i%997)*sim.Millisecond/10
		e.Every(iv, func() {})
	}
	var churn func()
	var live []*sim.Timer
	churn = func() {
		r := e.Rand()
		for k := 0; k < 8; k++ {
			switch r.Intn(4) {
			case 0:
				live = append(live, e.After(sim.Time(r.Int63n(int64(20*sim.Minute))), func() {}))
			case 1:
				if n := len(live); n > 0 {
					live[r.Intn(n)].Cancel()
				}
			default:
				if n := len(live); n > 0 {
					if tm := live[r.Intn(n)]; tm.Active() {
						tm.Reschedule(e.Now() + sim.Time(r.Int63n(int64(10*sim.Minute))))
					}
				}
			}
		}
		e.After(50*sim.Millisecond, churn)
	}
	e.After(0, churn)
	e.RunUntil(2 * sim.Minute)
	return e.Fired()
}

// BenchmarkEngine compares the timing-wheel event queue (the default)
// against the retained binary heap on the bare-engine timer workload at
// MEGA-GRID pending-set sizes. The acceptance bar for this PR is wheel <=
// heap/1.3 ns/op at 20k pending timers.
func BenchmarkEngine(b *testing.B) {
	want := uint64(0)
	for _, mode := range []struct {
		name string
		heap bool
	}{{"wheel", false}, {"heap", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got := engineTimerRun(mode.heap, 20000)
				if got == 0 {
					b.Fatal("no events fired")
				}
				if want == 0 {
					want = got
				} else if got != want {
					b.Fatalf("engines diverge: %d events vs %d", got, want)
				}
			}
		})
	}
}

// BenchmarkLargeGrid runs the Facebook workload end to end on the ~1000-node
// twelve-site preset — the scale the incremental rebalancer was built to
// open — under both event queues. The engines are bit-identical, so the
// self-check compares their simulation outcomes.
func BenchmarkLargeGrid(b *testing.B) {
	var want experiments.LargeGridResult
	for _, mode := range []struct {
		name string
		heap bool
	}{{"wheel", false}, {"heap", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var r experiments.LargeGridResult
			for i := 0; i < b.N; i++ {
				r = experiments.LargeGrid(experiments.Options{Scale: 0.25, Seeds: []int64{1}, HeapScheduler: mode.heap})
			}
			if r.JobsFailed != 0 {
				b.Fatalf("%d jobs failed on the stable large grid", r.JobsFailed)
			}
			if want == (experiments.LargeGridResult{}) {
				want = r
			} else if r != want {
				b.Fatalf("engine paths diverge: %+v vs %+v", r, want)
			}
			b.ReportMetric(r.Response.Seconds(), "response-s")
			b.ReportMetric(float64(r.EventsFired), "events")
			b.ReportMetric(100*r.CrossSiteFrac, "cross-site-%")
		})
	}
}

// BenchmarkMegaGrid runs the Facebook workload end to end at the MEGA-GRID
// scale: ~10,000 nodes over forty sites, an order of magnitude past
// LARGE-GRID and two past the paper. One iteration is a full provisioning
// ramp plus workload execution; quick-mode CI runs it once and uploads the
// harness document as BENCH_mega.json.
func BenchmarkMegaGrid(b *testing.B) {
	var r experiments.MegaGridResult
	for i := 0; i < b.N; i++ {
		r = experiments.MegaGrid(experiments.Options{Scale: 0.25, Seeds: []int64{1}})
	}
	if r.JobsFailed != 0 {
		b.Fatalf("%d jobs failed on the stable mega grid", r.JobsFailed)
	}
	b.ReportMetric(r.Response.Seconds(), "response-s")
	b.ReportMetric(float64(r.EventsFired), "events")
	b.ReportMetric(float64(r.Reached), "nodes")
}

// BenchmarkGigaGrid runs the Facebook workload end to end at the GIGA-GRID
// scale: ~100,000 slots over 104 sites, an order of magnitude past
// MEGA-GRID and three past the paper. Sub-benchmarks run the site-sharded
// parallel engine (the default) and the sequential timing-wheel oracle;
// the simulations must agree exactly, so the wall-clock ratio is pure
// engine speedup. Set HOG_GIGA_JSON=path to write a small JSON artifact
// recording both wall-clocks and the speedup — CI uploads it as
// BENCH_giga.json.
func BenchmarkGigaGrid(b *testing.B) {
	var results [2]experiments.GigaGridResult
	var secsPerOp [2]float64
	var iters [2]int
	for m, mode := range []struct {
		name string
		seq  bool
	}{{"sharded", false}, {"seq", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var r experiments.GigaGridResult
			for i := 0; i < b.N; i++ {
				r = experiments.GigaGrid(experiments.Options{Scale: 0.25, Seeds: []int64{1}, SequentialEngine: mode.seq})
			}
			if r.JobsFailed != 0 {
				b.Fatalf("%d jobs failed on the stable giga grid", r.JobsFailed)
			}
			results[m] = r
			secsPerOp[m] = b.Elapsed().Seconds() / float64(b.N)
			iters[m] = b.N
			b.ReportMetric(r.Response.Seconds(), "response-s")
			b.ReportMetric(float64(r.EventsFired), "events")
			b.ReportMetric(float64(r.Reached), "nodes")
		})
	}
	if iters[0] == 0 || iters[1] == 0 {
		return // a -bench filter selected only one engine; nothing to compare
	}
	if results[0] != results[1] {
		b.Fatalf("engines diverge: %+v vs %+v", results[0], results[1])
	}
	speedup := secsPerOp[1] / secsPerOp[0]
	b.Logf("giga sharded %.1fs vs seq %.1fs: speedup %.2fx on GOMAXPROCS=%d",
		secsPerOp[0], secsPerOp[1], speedup, runtime.GOMAXPROCS(0))
	if path := os.Getenv("HOG_GIGA_JSON"); path != "" {
		artifact := struct {
			ShardedSeconds float64 `json:"sharded_seconds"`
			SeqSeconds     float64 `json:"seq_seconds"`
			Speedup        float64 `json:"speedup"`
			GOMAXPROCS     int     `json:"gomaxprocs"`
			EventsFired    uint64  `json:"events_fired"`
			Reached        int     `json:"reached_nodes"`
			ResponseS      float64 `json:"response_s"`
		}{secsPerOp[0], secsPerOp[1], speedup, runtime.GOMAXPROCS(0),
			results[0].EventsFired, results[0].Reached, results[0].Response.Seconds()}
		buf, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessSuite runs the full experiment matrix through the
// parallel harness and emits the same versioned JSON results document
// hogbench -json produces. Set HOG_BENCH_JSON=path to keep the document as
// a CI artifact; otherwise it is discarded after serialization.
func BenchmarkHarnessSuite(b *testing.B) {
	var doc *harness.Doc
	for i := 0; i < b.N; i++ {
		var err error
		doc, err = harness.RunSuite(context.Background(), []string{"all"}, experiments.Quick(), runtime.NumCPU())
		if err != nil {
			b.Fatal(err)
		}
	}
	trials := 0
	for _, e := range doc.Experiments {
		trials += len(e.Trials)
	}
	b.ReportMetric(float64(trials), "trials")
	out := io.Writer(io.Discard)
	if path := os.Getenv("HOG_BENCH_JSON"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := doc.WriteJSON(out); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable1FacebookBins regenerates Table I: the Facebook bin
// distribution and a generated 88-job schedule over it.
func BenchmarkTable1FacebookBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintTable1(io.Discard)
		s := workload.Generate(int64(i)+1, workload.Config{})
		if len(s.Jobs) != 88 {
			b.Fatalf("schedule has %d jobs, want 88", len(s.Jobs))
		}
	}
	b.ReportMetric(88, "jobs")
	b.ReportMetric(float64(workload.TotalMaps(workload.Table2())), "map-tasks")
}

// BenchmarkTable2TruncatedWorkload regenerates Table II.
func BenchmarkTable2TruncatedWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintTable2(io.Discard)
	}
	bins := workload.Table2()
	b.ReportMetric(float64(len(bins)), "bins")
	b.ReportMetric(float64(workload.TotalJobs(bins)), "jobs")
}

// BenchmarkTable3DedicatedCluster measures the Figure 4 dashed line: the
// Table III cluster running the Facebook schedule.
func BenchmarkTable3DedicatedCluster(b *testing.B) {
	var r experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3(benchOpts())
	}
	if r.Nodes != 30 || r.MapSlots != 100 || r.ReduceSlots != 30 {
		b.Fatalf("cluster shape %d/%d/%d, want 30/100/30", r.Nodes, r.MapSlots, r.ReduceSlots)
	}
	b.ReportMetric(r.Response.Seconds(), "response-s")
}

// BenchmarkFig4EquivalentPerformance sweeps HOG pool sizes against the
// dedicated cluster and reports the crossover point (paper: [99,100]).
func BenchmarkFig4EquivalentPerformance(b *testing.B) {
	var r experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4(benchOpts())
	}
	b.ReportMetric(r.Cluster.Seconds(), "cluster-s")
	for _, p := range r.Points {
		if p.Nodes == 55 {
			b.ReportMetric(p.Mean.Seconds(), "hog55-s")
		}
		if p.Nodes == 100 {
			b.ReportMetric(p.Mean.Seconds(), "hog100-s")
		}
	}
	if r.Crossover < 0 {
		b.Log("no crossover in benchmark-scale sweep")
	} else {
		b.ReportMetric(float64(r.Crossover), "crossover-nodes")
	}
}

// BenchmarkFig5NodeFluctuation regenerates the three Figure 5 node series.
func BenchmarkFig5NodeFluctuation(b *testing.B) {
	var runs []experiments.FluctuationRun
	for i := 0; i < b.N; i++ {
		runs = experiments.Fig5Table4(benchOpts())
	}
	if len(runs) != 3 {
		b.Fatalf("runs = %d, want 3 (5a, 5b, 5c)", len(runs))
	}
	for _, r := range runs {
		if r.Series.Len() == 0 {
			b.Fatal("empty availability series")
		}
	}
	b.ReportMetric(runs[2].Response.Seconds()-runs[0].Response.Seconds(), "unstable-penalty-s")
}

// BenchmarkTable4AreaBeneathCurves reports the Table IV statistics: response
// time and area beneath the availability curve for the Figure 5 runs.
func BenchmarkTable4AreaBeneathCurves(b *testing.B) {
	var runs []experiments.FluctuationRun
	for i := 0; i < b.N; i++ {
		runs = experiments.Fig5Table4(benchOpts())
	}
	for _, r := range runs {
		label := strings.Fields(r.Label)[0]
		b.ReportMetric(r.Response.Seconds(), label+"-resp-s")
		b.ReportMetric(r.Area/1000, label+"-area-kns")
	}
}

// BenchmarkAblationSiteAwareness: whole-site failure with and without
// HOG's site-aware placement and replication 10 (§III.B.1).
func BenchmarkAblationSiteAwareness(b *testing.B) {
	var rs []experiments.SiteFailureResult
	for i := 0; i < b.N; i++ {
		rs = experiments.SiteFailure(benchOpts())
	}
	if rs[0].BlocksLost != 0 {
		b.Fatalf("HOG config lost %d blocks on site failure, want 0", rs[0].BlocksLost)
	}
	b.ReportMetric(float64(rs[0].BlocksLost), "hog-blocks-lost")
	b.ReportMetric(float64(rs[1].BlocksLost), "naive-blocks-lost")
	b.ReportMetric(float64(rs[1].JobsFailed), "naive-jobs-failed")
}

// BenchmarkAblationReplicationFactor sweeps the replication factor under
// unstable churn (§III.B.1's 3-vs-10 trade-off).
func BenchmarkAblationReplicationFactor(b *testing.B) {
	var rs []experiments.ReplicationResult
	for i := 0; i < b.N; i++ {
		rs = experiments.ReplicationSweep(benchOpts())
	}
	for _, r := range rs {
		switch r.Repl {
		case 3:
			b.ReportMetric(float64(r.BlocksLost), "repl3-blocks-lost")
		case 10:
			b.ReportMetric(float64(r.BlocksLost), "repl10-blocks-lost")
			b.ReportMetric(r.BytesReplicated/1e9, "repl10-recovery-GB")
		}
	}
}

// BenchmarkAblationHeartbeatTimeout compares HOG's 30 s dead timeout with
// the traditional 15 minutes under churn (§III.B).
func BenchmarkAblationHeartbeatTimeout(b *testing.B) {
	var rs []experiments.HeartbeatResult
	for i := 0; i < b.N; i++ {
		rs = experiments.HeartbeatSweep(benchOpts())
	}
	b.ReportMetric(rs[0].Response.Seconds(), "timeout30s-resp-s")
	b.ReportMetric(rs[1].Response.Seconds(), "timeout900s-resp-s")
	if rs[0].Response >= rs[1].Response {
		b.Log("warning: 30s timeout not faster in this run (stochastic)")
	}
}

// BenchmarkAblationZombieDatanodes compares the three §IV.D.1 behaviours.
func BenchmarkAblationZombieDatanodes(b *testing.B) {
	var rs []experiments.ZombieResult
	for i := 0; i < b.N; i++ {
		rs = experiments.ZombieSweep(benchOpts())
	}
	for _, r := range rs {
		b.ReportMetric(float64(r.JobsFailed), r.Mode.String()+"-jobs-failed")
	}
	// The fix must eliminate job failures.
	if rs[2].JobsFailed != 0 {
		b.Fatalf("fixed mode failed %d jobs", rs[2].JobsFailed)
	}
}

// BenchmarkAblationDiskOverflow reproduces §IV.D.2: shrinking scratch disks
// until accumulated intermediate output kills workers.
func BenchmarkAblationDiskOverflow(b *testing.B) {
	var rs []experiments.DiskOverflowResult
	for i := 0; i < b.N; i++ {
		rs = experiments.DiskOverflow(benchOpts())
	}
	b.ReportMetric(float64(rs[0].Killed), "disk-ample-killed")
	b.ReportMetric(float64(rs[len(rs)-1].Killed), "disk-tight-killed")
	if rs[0].Killed > 0 {
		b.Fatalf("ample disks still overflowed (%d workers killed)", rs[0].Killed)
	}
}

// BenchmarkAblationRedundantCopies explores the paper's §VI future work:
// configurable task copy counts under churn.
func BenchmarkAblationRedundantCopies(b *testing.B) {
	var rs []experiments.NCopyResult
	for i := 0; i < b.N; i++ {
		rs = experiments.RedundantCopies(benchOpts())
	}
	for _, r := range rs {
		name := "copies2"
		switch {
		case r.Copies == 1:
			name = "nospec"
		case r.Copies == 2 && r.Eager:
			name = "eager2"
		case r.Copies == 3:
			name = "eager3"
		}
		b.ReportMetric(r.Response.Seconds(), name+"-resp-s")
	}
}

// BenchmarkAblationDelayScheduling compares HOG's FIFO against delay
// scheduling (Zaharia et al. [3]) at a contended replication factor.
func BenchmarkAblationDelayScheduling(b *testing.B) {
	var rs []experiments.DelayResult
	for i := 0; i < b.N; i++ {
		rs = experiments.DelayScheduling(benchOpts())
	}
	b.ReportMetric(100*rs[0].LocalityRate, "fifo-local-pct")
	b.ReportMetric(100*rs[len(rs)-1].LocalityRate, "delay45s-local-pct")
	if rs[len(rs)-1].LocalityRate < rs[0].LocalityRate {
		b.Fatal("delay scheduling reduced locality")
	}
}

// BenchmarkAblationHODBaseline compares Hadoop On Demand's per-job cluster
// reconstruction with HOG's persistent platform (§V).
func BenchmarkAblationHODBaseline(b *testing.B) {
	var rs []experiments.HODResultRow
	for i := 0; i < b.N; i++ {
		rs = experiments.HODComparison(benchOpts())
	}
	b.ReportMetric(rs[0].Response.Seconds(), "hod-resp-s")
	b.ReportMetric(rs[1].Response.Seconds(), "hog-resp-s")
	if rs[0].Response <= rs[1].Response {
		b.Fatal("HOD not slower than HOG; reconstruction overhead lost")
	}
}
